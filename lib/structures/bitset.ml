type t = {
  words : int array; (* 63 usable bits per word would waste one; use 62-bit
                        ints as 63-bit words is fine since we only mask. *)
  n : int;
}

let bits_per_word = 63

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc
