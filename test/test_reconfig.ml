(* Tests for the online-reconfiguration subsystem (lib/reconfig):
   seeded event streams and their replay format, link-repair inversion,
   table lifting, union-CDG transition verification (including the
   classic two-individually-safe-tables-unsafe-transition example),
   incremental reroute selectivity, and mid-run table swaps in the
   simulator. *)

module Network = Nue_netgraph.Network
module Topology = Nue_netgraph.Topology
module Fault = Nue_netgraph.Fault
module Table = Nue_routing.Table
module Verify = Nue_routing.Verify
module Engine = Nue_routing.Engine
module Sim = Nue_sim.Sim
module Traffic = Nue_sim.Traffic
module Prng = Nue_structures.Prng
module Event = Nue_reconfig.Event
module Transition = Nue_reconfig.Transition
module Reconfig = Nue_reconfig.Reconfig

let test_case = Alcotest.test_case

let torus332 () =
  (Topology.torus3d ~dims:(3, 3, 2) ~terminals_per_switch:1 ()).Topology.net

(* {1 Event streams} *)

let stream_deterministic () =
  let net = torus332 () in
  let gen seed =
    Event.stream_to_string
      (Event.random_churn (Prng.create seed) net ~events:16)
  in
  Alcotest.(check string) "same seed, same stream" (gen 7) (gen 7);
  Alcotest.(check bool) "different seed, different stream" true
    (gen 7 <> gen 8);
  let burst seed =
    Event.stream_to_string (Event.burst_outage (Prng.create seed) net ~fail:4)
  in
  Alcotest.(check string) "burst deterministic" (burst 3) (burst 3);
  let flap seed =
    Event.stream_to_string
      (Event.flapping_link (Prng.create seed) net ~flaps:3)
  in
  Alcotest.(check string) "flap deterministic" (flap 3) (flap 3)

let stream_shapes () =
  let net = torus332 () in
  let burst = Event.burst_outage (Prng.create 5) net ~fail:3 in
  Alcotest.(check int) "burst: fails then repairs" 6 (List.length burst);
  let fails, repairs = List.partition Event.is_fail burst in
  Alcotest.(check int) "3 fails" 3 (List.length fails);
  Alcotest.(check int) "3 repairs" 3 (List.length repairs);
  (* Burst repairs in reverse order of failure. *)
  let fail_pairs = List.map Event.endpoints fails in
  let repair_pairs = List.map Event.endpoints repairs in
  Alcotest.(check bool) "repairs reverse fails" true
    (List.rev fail_pairs = repair_pairs);
  let flaps = Event.flapping_link (Prng.create 5) net ~flaps:4 in
  Alcotest.(check int) "flap count" 8 (List.length flaps);
  (match flaps with
   | Event.Fail (u, v) :: Event.Repair (u', v') :: _ ->
     Alcotest.(check (pair int int)) "flap same link" (u, v) (u', v')
   | _ -> Alcotest.fail "flap stream must alternate fail/repair")

let replay_roundtrip () =
  let net = torus332 () in
  let evs = Event.random_churn (Prng.create 9) net ~events:12 in
  (match Event.stream_of_string (Event.stream_to_string evs) with
   | Ok back -> Alcotest.(check bool) "round-trips" true (back = evs)
   | Error msg -> Alcotest.failf "replay failed: %s" msg);
  (match Event.stream_of_string "# comment\n\nfail 1 2\nrepair 1 2\n" with
   | Ok evs ->
     Alcotest.(check bool) "comments and blanks skipped" true
       (evs = [ Event.Fail (1, 2); Event.Repair (1, 2) ])
   | Error msg -> Alcotest.failf "parse failed: %s" msg);
  match Event.stream_of_string "fail 1 2\nbogus line\n" with
  | Ok _ -> Alcotest.fail "malformed line must be rejected"
  | Error msg ->
    Alcotest.(check bool) "error names the line" true
      (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")

(* {1 Fault.random_link_repairs} *)

let repairs_deterministic () =
  let net = torus332 () in
  let degrade seed = Fault.random_link_failures (Prng.create seed) net ~fraction:0.3 in
  let removed_links remap = snd (Fault.removed net remap) in
  let r1 = degrade 4 and r2 = degrade 4 in
  Alcotest.(check bool) "failures deterministic" true
    (removed_links r1 = removed_links r2);
  let rep seed remap =
    Fault.random_link_repairs (Prng.create seed) ~base:net remap ~fraction:0.5
  in
  Alcotest.(check bool) "repairs deterministic" true
    (removed_links (rep 11 r1) = removed_links (rep 11 r2));
  (* Repairing restores: strictly fewer links cut afterwards. *)
  Alcotest.(check bool) "repair restores some links" true
    (List.length (removed_links (rep 11 r1)) < List.length (removed_links r1))

let full_repair_restores_base () =
  let net = torus332 () in
  let remap = Fault.random_link_failures (Prng.create 4) net ~fraction:0.3 in
  let healed =
    Fault.random_link_repairs (Prng.create 1) ~base:net remap ~fraction:1.0
  in
  Alcotest.(check int) "all channels back"
    (Network.num_channels net)
    (Network.num_channels healed.Fault.net);
  Alcotest.(check (pair (list int) (list (pair int int))))
    "nothing removed" ([], [])
    (Fault.removed net healed)

(* {1 Lifting} *)

let lift_preserves_paths () =
  let net = torus332 () in
  let evs = Event.random_churn (Prng.create 2) net ~events:1 in
  let u, v = Event.endpoints (List.hd evs) in
  let remap = Fault.remove_links net [ (u, v) ] in
  match Engine.route "nue" (Engine.spec ~vcs:2 remap.Fault.net) with
  | Error e ->
    Alcotest.failf "routing failed: %s" (Nue_routing.Engine_error.to_string e)
  | Ok degraded_table ->
    let lifted = Reconfig.lift ~base:net remap degraded_table in
    Alcotest.(check bool) "lifted on base" true (lifted.Table.net == net);
    (* Link-only faults keep node ids, so the hop-by-hop node sequences
       must be identical between the two coordinate systems. *)
    let terms = Network.terminals net in
    Array.iter
      (fun src ->
         Array.iter
           (fun dest ->
              if src <> dest then
                let p1 =
                  Table.path_nodes degraded_table ~src ~dest
                and p2 = Table.path_nodes lifted ~src ~dest in
                Alcotest.(check bool)
                  (Printf.sprintf "same node path %d->%d" src dest)
                  true (p1 = p2))
           terms)
      terms;
    let report = Verify.check lifted in
    Alcotest.(check bool) "lifted connected" true report.Verify.connected;
    Alcotest.(check bool) "lifted deadlock-free" true
      report.Verify.deadlock_free

(* {1 Transition verification} *)

(* The classic counterexample: on a 4-switch ring, one table holds the
   two clockwise dependencies 01->12 and 23->30, the other the two
   clockwise dependencies 12->23 and 30->01. Each is individually
   acyclic (deadlock-free), but a live transition lets packets of both
   generations coexist and the union closes the ring: deadlock. *)
let ring4 () = Helpers.ring 4

let ch net u v =
  match Network.find_channel net u v with
  | Some c -> c
  | None -> Alcotest.failf "no channel %d -> %d" u v

(* Build a destination-based table on the 4-ring from a route choice
   per (switch, dest-terminal) pair: [via.(s).(d)] is the next node on
   the path from switch s toward terminal (4 + d). *)
let ring4_table net name via =
  let dests = Network.terminals net in
  let n = Network.num_nodes net in
  let next_channel =
    Array.mapi
      (fun pos dest ->
         let row = Array.make n (-1) in
         let dsw = dest - 4 in
         for t = 4 to 7 do
           (* Terminals inject toward their switch. *)
           if t <> dest then row.(t) <- ch net t (t - 4)
         done;
         for s = 0 to 3 do
           if s = dsw then row.(s) <- ch net s dest
           else row.(s) <- ch net s via.(s).(dsw)
         done;
         ignore pos;
         row)
      dests
  in
  Table.make ~net ~algorithm:name ~dests:(Array.copy dests) ~next_channel
    ~vl:Table.All_zero ~num_vls:1 ()

let transition_counterexample () =
  let net = ring4 () in
  (* old: t2 traffic from s0 goes clockwise via s1 (dep 01->12); t0
     traffic from s2 goes clockwise via s3 (dep 23->30); the distance-2
     routes for t1 and t3 go counter-clockwise. *)
  let old_via =
    [| (* from s0 toward t0 t1 t2 t3 *) [| -1; 1; 1; 3 |];
       (* from s1 *) [| 0; -1; 2; 0 |];
       (* from s2 *) [| 3; 1; -1; 3 |];
       (* from s3 *) [| 0; 2; 2; -1 |] |]
  in
  (* new: t3 traffic from s1 now goes clockwise via s2 (dep 12->23); t1
     traffic from s3 clockwise via s0 (dep 30->01); t0's distance-2
     route flips counter-clockwise so the new table stays acyclic. *)
  let new_via =
    [| [| -1; 1; 1; 3 |];
       [| 0; -1; 2; 2 |];
       [| 1; 1; -1; 3 |];
       [| 0; 0; 2; -1 |] |]
  in
  let old_table = ring4_table net "old" old_via in
  let new_table = ring4_table net "new" new_via in
  Alcotest.(check bool) "old table deadlock-free" true
    (Verify.deadlock_free old_table);
  Alcotest.(check bool) "new table deadlock-free" true
    (Verify.deadlock_free new_table);
  Alcotest.(check bool) "old table connected" true (Verify.connected old_table);
  Alcotest.(check bool) "new table connected" true (Verify.connected new_table);
  match Transition.verify ~old_table ~new_table with
  | Transition.Safe -> Alcotest.fail "transition must be unsafe"
  | Transition.Unsafe { cycle; rendered; drain } ->
    Alcotest.(check bool) "witness cycle nonempty" true (cycle <> []);
    (* The mixed cycle closes the clockwise ring: 4 units. *)
    Alcotest.(check int) "witness is the 4-ring" 4 (List.length cycle);
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "rendering explains the wait" true
      (contains rendered "waits for");
    Alcotest.(check bool) "staged drain plan nonempty" true
      (Array.length drain > 0);
    (* t2's rows are identical in both tables, so it is not drained. *)
    Alcotest.(check bool) "unchanged dest not drained" true
      (not (Array.exists (fun d -> d = 6) drain))

let transition_safe_on_identity () =
  let net = ring4 () in
  let via =
    [| [| -1; 1; 1; 3 |]; [| 0; -1; 2; 0 |]; [| 3; 1; -1; 3 |];
       [| 0; 2; 2; -1 |] |]
  in
  let t = ring4_table net "t" via in
  (match Transition.verify ~old_table:t ~new_table:t with
   | Transition.Safe -> ()
   | Transition.Unsafe _ -> Alcotest.fail "identity transition must be safe");
  Alcotest.(check int) "no changed dests" 0
    (Array.length (Transition.changed_dests ~old_table:t ~new_table:t))

(* {1 Incremental reroute} *)

let incremental_single_link () =
  let net = torus332 () in
  match Reconfig.init ~vcs:4 ~seed:1 net with
  | Error msg -> Alcotest.failf "init failed: %s" msg
  | Ok state ->
    (* A handful of distinct single-link failures: on average they must
       stay under the half-the-destinations bar (Nue concentrates
       routes near the escape root, so an individual link can exceed
       it) and each must produce a valid table; the incremental path
       must stick for most (a replay conflict can push an individual
       case to the full-reroute fallback). *)
    let candidates =
      Array.to_list (Network.duplex_pairs net)
      |> List.filter (fun (u, v) ->
             Network.is_switch net u && Network.is_switch net v
             && (match Fault.remove_links net [ (u, v) ] with
                 | _ -> true
                 | exception Invalid_argument _ -> false))
      |> List.filteri (fun i _ -> i < 6)
    in
    Alcotest.(check bool) "candidates found" true (candidates <> []);
    let incremental = ref 0 in
    let fractions = ref [] in
    List.iter
      (fun (u, v) ->
         match Reconfig.apply state (Event.Fail (u, v)) with
         | Error msg -> Alcotest.failf "apply failed: %s" msg
         | Ok (state', step) ->
           Alcotest.(check bool) "some dests affected" true
             (Array.length step.Reconfig.affected > 0);
           fractions := step.Reconfig.affected_fraction :: !fractions;
           if step.Reconfig.kind = Reconfig.Incremental then
             incr incremental;
           let report = Verify.check state'.Reconfig.table in
           Alcotest.(check bool) "new table connected" true
             report.Verify.connected;
           Alcotest.(check bool) "new table deadlock-free" true
             report.Verify.deadlock_free;
           Alcotest.(check int) "one failed link" 1
             (List.length state'.Reconfig.failed);
           (* Fail then repair returns to an intact network. *)
           match Reconfig.apply state' (Event.Repair (u, v)) with
           | Error msg -> Alcotest.failf "repair failed: %s" msg
           | Ok (state'', _) ->
             Alcotest.(check int) "no failed links" 0
               (List.length state''.Reconfig.failed);
             Alcotest.(check int) "all channels restored"
               (Network.num_channels net)
               (Network.num_channels state''.Reconfig.remap.Fault.net))
      candidates;
    (* The acceptance bar: single-link failures reroute fewer than half
       the destinations on average. *)
    let mean =
      List.fold_left ( +. ) 0.0 !fractions
      /. float_of_int (List.length !fractions)
    in
    Alcotest.(check bool) "mean affected fraction under 0.5" true (mean < 0.5);
    Alcotest.(check bool) "incremental path taken more often than not" true
      (2 * !incremental > List.length candidates)

let repair_of_intact_link_rejected () =
  let net = torus332 () in
  match Reconfig.init ~vcs:2 net with
  | Error msg -> Alcotest.failf "init failed: %s" msg
  | Ok state ->
    (match Reconfig.apply state (Event.Repair (0, 1)) with
     | Ok _ -> Alcotest.fail "repairing an intact link must fail"
     | Error _ -> ())

(* {1 Simulator swaps} *)

let swap_records_sanity () =
  let net = torus332 () in
  match Reconfig.init ~vcs:2 net with
  | Error msg -> Alcotest.failf "init failed: %s" msg
  | Ok state ->
    let table = state.Reconfig.table in
    let traffic =
      List.concat
        (List.init 6 (fun _ -> Traffic.all_to_all_shift net ~message_bytes:512))
    in
    let direct = { Sim.at_cycle = 100; table; staged = false } in
    let staged = { Sim.at_cycle = 400; table; staged = true } in
    let out, telem, records =
      Sim.run_with_swaps table ~swaps:[ direct; staged ] ~traffic
    in
    Alcotest.(check bool) "no telemetry requested" true (telem = None);
    Alcotest.(check bool) "no deadlock" false out.Sim.deadlock;
    Alcotest.(check int) "all delivered" out.Sim.total_packets
      out.Sim.delivered_packets;
    (match records with
     | [ r1; r2 ] ->
       Alcotest.(check int) "direct requested at 100" 100 r1.Sim.swap_at;
       Alcotest.(check int) "direct activates immediately" 100
         r1.Sim.activated_at;
       Alcotest.(check bool) "direct saw traffic in flight" true
         (r1.Sim.in_flight_packets > 0);
       Alcotest.(check bool) "direct drains later" true
         (r1.Sim.drained_at >= r1.Sim.swap_at);
       Alcotest.(check int) "staged requested at 400" 400 r2.Sim.swap_at;
       (* A staged swap activates only once the fabric is empty. *)
       Alcotest.(check bool) "staged activates after drain" true
         (r2.Sim.activated_at >= r2.Sim.drained_at
          && r2.Sim.drained_at >= r2.Sim.swap_at)
     | _ -> Alcotest.failf "expected 2 swap records, got %d"
              (List.length records))

let swap_rejects_foreign_table () =
  let net = torus332 () in
  let other = Helpers.ring 4 in
  match (Reconfig.init ~vcs:2 net, Reconfig.init ~vcs:2 other) with
  | Ok s1, Ok s2 ->
    let traffic = Traffic.all_to_all_shift net ~message_bytes:256 in
    Alcotest.check_raises "foreign swap table rejected"
      (Invalid_argument
         "Sim.run_with_swaps: swap table is not on the same network")
      (fun () ->
         ignore
           (Sim.run_with_swaps s1.Reconfig.table
              ~swaps:
                [ { Sim.at_cycle = 10; table = s2.Reconfig.table;
                    staged = false } ]
              ~traffic))
  | _ -> Alcotest.fail "init failed"

(* {1 End-to-end churn} *)

let churn_end_to_end () =
  let net = torus332 () in
  match Reconfig.init ~vcs:2 ~seed:1 net with
  | Error msg -> Alcotest.failf "init failed: %s" msg
  | Ok state ->
    let stream = Event.random_churn (Prng.create 13) net ~events:10 in
    Alcotest.(check int) "stream complete" 10 (List.length stream);
    (match
       Reconfig.simulate_churn ~interval:400 ~warmup:200 ~message_bytes:512
         state stream
     with
     | Error msg -> Alcotest.failf "churn failed: %s" msg
     | Ok churn ->
       Alcotest.(check int) "one step per event" 10
         (List.length churn.Reconfig.steps);
       Alcotest.(check int) "one swap record per step" 10
         (List.length churn.Reconfig.swap_records);
       Alcotest.(check bool) "zero transition deadlocks" false
         churn.Reconfig.outcome.Sim.deadlock;
       Alcotest.(check int) "all packets delivered"
         churn.Reconfig.outcome.Sim.total_packets
         churn.Reconfig.outcome.Sim.delivered_packets;
       (* Every intermediate table is a valid routing of its epoch. *)
       List.iter
         (fun (s : Reconfig.step) ->
            let r = Verify.check s.Reconfig.table in
            Alcotest.(check bool) "step table connected" true
              r.Verify.connected;
            Alcotest.(check bool) "step table deadlock-free" true
              r.Verify.deadlock_free)
         churn.Reconfig.steps;
       (* Every requested swap eventually activated under load. *)
       List.iter
         (fun (r : Sim.swap_record) ->
            Alcotest.(check bool) "swap activated" true
              (r.Sim.activated_at >= r.Sim.swap_at))
         churn.Reconfig.swap_records;
       let json =
         Nue_pipeline.Json.to_string (Reconfig.churn_to_json churn)
       in
       (* The JSON summary round-trips through the parser. *)
       (match Nue_pipeline.Json.of_string json with
        | _ -> ()
        | exception Nue_pipeline.Json.Parse_error msg ->
          Alcotest.failf "churn JSON malformed: %s" msg))

let suite =
  [ ("reconfig:events",
     [ test_case "seeded streams deterministic" `Quick stream_deterministic;
       test_case "burst and flap shapes" `Quick stream_shapes;
       test_case "replay round-trip" `Quick replay_roundtrip ]);
    ("reconfig:repairs",
     [ test_case "repairs deterministic" `Quick repairs_deterministic;
       test_case "full repair restores base" `Quick full_repair_restores_base ]);
    ("reconfig:transition",
     [ test_case "lift preserves paths" `Quick lift_preserves_paths;
       test_case "union-CDG counterexample" `Quick transition_counterexample;
       test_case "identity transition safe" `Quick transition_safe_on_identity ]);
    ("reconfig:planner",
     [ test_case "incremental single link" `Quick incremental_single_link;
       test_case "repair of intact link rejected" `Quick
         repair_of_intact_link_rejected ]);
    ("reconfig:sim",
     [ test_case "swap records sanity" `Quick swap_records_sanity;
       test_case "foreign swap table rejected" `Quick
         swap_rejects_foreign_table;
       test_case "churn end to end" `Slow churn_end_to_end ]) ]
