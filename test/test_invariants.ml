(* Property-based correctness net (Theorem 2, Definition 3).

   210 seeded, deterministic cases: 5 topology families x 42 parameter
   draws, each with a rotating fault plan (none / random link failures /
   switch kill / link cut). Every registered engine is run on every
   case through the Engine registry, and each outcome is checked
   against the engine's declared capabilities:

   - an [Ok] table must be cycle-free (Definition 3);
   - engines with [deadlock_free] must produce an acyclic virtual
     channel dependency graph — the per-layer induced CDGs are acyclic
     (Theorem 2 / Dally & Seitz via [Verify.check]);
   - engines without [may_disconnect] must route every terminal pair;
   - engines with [respects_vc_budget] may not exceed the VL budget nor
     return [Vc_budget_exceeded];
   - no engine may surface [Internal] (a trapped exception). *)

module Network = Nue_netgraph.Network
module Prng = Nue_structures.Prng
module Engine = Nue_routing.Engine
module Engine_error = Nue_routing.Engine_error
module Verify = Nue_routing.Verify
module Experiment = Nue_pipeline.Experiment

let test_case = Alcotest.test_case
let cases_per_family = 42
let master_seed = 2026

type family = { fam_name : string; draw : Prng.t -> Experiment.topology }

(* Parameter draws are deliberately tiny: the point is breadth (families
   x faults x engines), and the whole net must stay inside tier-1's
   time budget. *)
let families =
  [ { fam_name = "random";
      draw =
        (fun p ->
           let switches = 6 + Prng.int p 8 in
           let links = switches - 1 + Prng.int p 14 in
           let max_links = switches * (switches - 1) / 2 in
           Experiment.Random
             { switches; links = min links max_links;
               terminals = 1 + Prng.int p 2 }) };
    { fam_name = "torus3d";
      draw =
        (fun p ->
           let dims =
             [| (3, 3, 2); (4, 3, 2); (3, 3, 3); (4, 4, 2) |].(Prng.int p 4)
           in
           Experiment.Torus3d { dims; terminals = 1; redundancy = 1 }) };
    { fam_name = "mesh";
      draw =
        (fun p ->
           let d () = 2 + Prng.int p 3 in
           let dims =
             if Prng.int p 2 = 0 then [| d (); d () |]
             else [| d (); d (); 2 |]
           in
           Experiment.Mesh { dims; terminals = 1 }) };
    { fam_name = "kary-ntree";
      draw =
        (fun p ->
           Experiment.Kary_ntree
             { k = 2; n = 2 + Prng.int p 2; terminals = 1 + Prng.int p 2 }) };
    { fam_name = "hypercube";
      draw =
        (fun p ->
           Experiment.Hypercube
             { dim = 2 + Prng.int p 3; terminals = 1 }) } ]

(* Fault plans reference concrete node/link ids, so they are drawn from
   an intact build of the same topology (same seed => same network). *)
let fault_plan prng case topology seed =
  match case mod 4 with
  | 0 -> Experiment.No_faults
  | 1 -> Experiment.Link_failures (0.03 +. (float_of_int (Prng.int prng 8) /. 100.0))
  | 2 ->
    let intact = Experiment.build (Experiment.setup ~seed topology) in
    let sws = Network.switches intact.Experiment.net in
    Experiment.Kill_switches [ sws.(Prng.int prng (Array.length sws)) ]
  | _ ->
    let intact = Experiment.build (Experiment.setup ~seed topology) in
    let pairs =
      Network.duplex_pairs intact.Experiment.net
      |> Array.to_list
      |> List.filter (fun (a, b) ->
          Network.is_switch intact.Experiment.net a
          && Network.is_switch intact.Experiment.net b)
    in
    (match pairs with
     | [] -> Experiment.No_faults
     | _ -> Experiment.Cut_links [ List.nth pairs (Prng.int prng (List.length pairs)) ])

(* A fault plan that disconnects the network is rejected by the fault
   injector; such draws fall back to the intact topology so every case
   still exercises all engines. *)
let build_case prng fam case =
  let seed = master_seed + (1000 * case) + Hashtbl.hash fam.fam_name mod 997 in
  let topology = fam.draw prng in
  let faults = fault_plan prng case topology seed in
  let faulted =
    match Experiment.build (Experiment.setup ~faults ~seed topology) with
    | built -> Some built
    | exception Invalid_argument _ -> None
  in
  match faulted with
  | Some built -> (built, faults <> Experiment.No_faults)
  | None -> (Experiment.build (Experiment.setup ~seed topology), false)

let check_outcome ~ctx ~vcs built (module E : Engine.ENGINE) =
  let caps = E.capabilities in
  let spec = Experiment.spec ~vcs built in
  match Engine.route E.name spec with
  | Error (Engine_error.Internal msg) ->
    Alcotest.failf "%s/%s: internal error: %s" ctx E.name msg
  | Error (Engine_error.Unknown_engine _) ->
    Alcotest.failf "%s/%s: registry lost the engine" ctx E.name
  | Error (Engine_error.Vc_budget_exceeded _) when caps.Engine.respects_vc_budget ->
    Alcotest.failf "%s/%s: claims to respect any VC budget but exceeded it"
      ctx E.name
  | Error (Engine_error.Topology_mismatch _)
    when (not caps.Engine.needs_torus_coords) && not caps.Engine.needs_tree_meta ->
    Alcotest.failf "%s/%s: topology mismatch from a topology-agnostic engine"
      ctx E.name
  | Error _ ->
    (* Structured, capability-consistent failure: inside the contract. *)
    ()
  | Ok table ->
    let r = Verify.check table in
    if not r.Verify.cycle_free then
      Alcotest.failf "%s/%s: forwarding loop" ctx E.name;
    if caps.Engine.deadlock_free && not r.Verify.deadlock_free then
      Alcotest.failf "%s/%s: VL dependency cycle (Theorem 2 violated)" ctx
        E.name;
    if not caps.Engine.may_disconnect then begin
      if not r.Verify.connected then
        Alcotest.failf "%s/%s: %d unreachable pairs" ctx E.name
          r.Verify.unreachable_pairs;
      if r.Verify.unreachable_pairs <> 0 then
        Alcotest.failf "%s/%s: unreachable pairs on connected table" ctx
          E.name
    end;
    if caps.Engine.respects_vc_budget && Verify.vls_used table > vcs then
      Alcotest.failf "%s/%s: used %d VLs with budget %d" ctx E.name
        (Verify.vls_used table) vcs

let family_test fam () =
  let engines = Engine.all () in
  Alcotest.(check bool) "registry populated" true (List.length engines >= 5);
  let prng = Prng.create (master_seed + Hashtbl.hash fam.fam_name) in
  let faulted_cases = ref 0 in
  for case = 1 to cases_per_family do
    let built, has_faults = build_case prng fam case in
    if has_faults then incr faulted_cases;
    (* Rotate the budget so both the scarce (2) and roomy (8) regimes
       are covered deterministically. *)
    let vcs = [| 2; 4; 8 |].(case mod 3) in
    let ctx = Printf.sprintf "%s#%d(vcs=%d)" fam.fam_name case vcs in
    List.iter (check_outcome ~ctx ~vcs built) engines
  done;
  (* The net must actually contain fault scenarios, not just intact
     topologies that happened to survive the fallback. *)
  Alcotest.(check bool)
    (fam.fam_name ^ ": fault cases present") true (!faulted_cases >= 10)

let coverage_floor () =
  Alcotest.(check bool) "at least 4 families" true (List.length families >= 4);
  Alcotest.(check bool) "at least 200 cases" true
    (List.length families * cases_per_family >= 200)

let suite =
  [ ("invariants:theorem2",
     test_case "coverage floor (>=4 families, >=200 cases)" `Quick
       coverage_floor
     :: List.map
          (fun fam ->
             test_case
               (Printf.sprintf "%s x%d cases, all engines" fam.fam_name
                  cases_per_family)
               `Quick (family_test fam))
          families) ]
