type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase = Begin | End | Instant | Counter

type event = {
  name : string;
  phase : phase;
  ts : int;
  args : (string * arg) list;
}

type handle = int

let null_handle = 0

(* {1 Enabling}

   The tracer carries its own flag, independent of [Obs.on]: counters
   are cheap enough to run over a whole bench sweep, while span capture
   buffers events and is usually scoped to a single traced run. The
   flag and the buffer cap are global configuration ([Atomic]); all
   recording state below is per-domain. *)

let on = Atomic.make false

let enabled () = Atomic.get on

let enable () = Atomic.set on true

let disable () = Atomic.set on false

let capacity = Atomic.make 262_144

let set_capacity n =
  if n < 1 then invalid_arg "Span.set_capacity: capacity must be >= 1";
  Atomic.set capacity n

(* {1 Scope hooks}

   One optional global pair of callbacks, fired on every span open and
   close while capture is enabled. This is the seam [Profile] (the
   resource-attribution layer) plugs into: it cannot live inside this
   module without coupling the tracer to [Gc], and it cannot wrap every
   call site. Hooks see exactly the scopes the buffer sees — including
   the forced closes of a saturating [exit] — so a hook that maintains
   its own stack stays in lockstep with the tracer's. [None] (the
   default) costs one atomic load per scope. *)

type scope_hooks = {
  on_scope_enter : string -> unit;
  on_scope_exit : string -> unit;
}

let hooks : scope_hooks option Atomic.t = Atomic.make None

let set_scope_hooks h = Atomic.set hooks h

let hook_enter name =
  match Atomic.get hooks with
  | Some h -> h.on_scope_enter name
  | None -> ()

let hook_exit name =
  match Atomic.get hooks with
  | Some h -> h.on_scope_exit name
  | None -> ()

(* {1 Per-domain recorder}

   Every domain records into its own buffer with its own tick clock and
   nesting stack, reached through [Domain.DLS] — concurrent spans from
   a domain pool never interleave mid-nest. A worker's buffer is drained
   at pool join ([drain_events]) and appended to the spawning domain's
   buffer ([absorb_events]) with fresh local stamps, so the merged
   timeline stays monotonic and each worker's nesting arrives intact.

   The tick default makes timestamps a pure function of the (local)
   event sequence — two identical seeded single-domain runs serialize
   identically. [set_clock] installs an external integer clock (the
   simulator plugs its cycle counter in), [use_tick_clock] switches
   back, jumping the tick past the largest stamp already emitted so the
   timeline stays monotonic. *)

type state = {
  mutable tick : int;
  mutable last_ts : int;
  mutable custom_clock : (unit -> int) option;
  mutable buf : event array;
  mutable len : int;
  mutable dropped_events : int;
  mutable stack : string list;
  mutable depth : int;
}

let dummy = { name = ""; phase = Instant; ts = 0; args = [] }

let fresh_state () = {
  tick = 0;
  last_ts = 0;
  custom_clock = None;
  buf = Array.make 1024 dummy;
  len = 0;
  dropped_events = 0;
  stack = [];
  depth = 0;
}

let state_key = Domain.DLS.new_key fresh_state

let st () = Domain.DLS.get state_key

let set_clock f = (st ()).custom_clock <- Some f

let use_tick_clock () =
  let s = st () in
  s.custom_clock <- None;
  if s.tick <= s.last_ts then s.tick <- s.last_ts + 1

let now () =
  let s = st () in
  match s.custom_clock with Some f -> f () | None -> s.tick

(* Events past the cap are counted as dropped rather than forcing an
   unbounded trace. The stack bookkeeping keeps running even when
   events are dropped, so nesting stays consistent. *)
let record s name phase args =
  let ts =
    match s.custom_clock with
    | Some f -> f ()
    | None ->
      let t = s.tick in
      s.tick <- t + 1;
      t
  in
  if ts > s.last_ts then s.last_ts <- ts;
  let cap = Atomic.get capacity in
  if s.len >= Array.length s.buf && Array.length s.buf < cap then begin
    let nlen = min cap (2 * Array.length s.buf) in
    let nbuf = Array.make nlen dummy in
    Array.blit s.buf 0 nbuf 0 s.len;
    s.buf <- nbuf
  end;
  (* The cap may sit below the physical array size (set_capacity after
     the buffer already grew, or below the initial 1024). *)
  if s.len < cap && s.len < Array.length s.buf then begin
    s.buf.(s.len) <- { name; phase; ts; args };
    s.len <- s.len + 1
  end
  else s.dropped_events <- s.dropped_events + 1

(* {1 Nesting}

   [enter] pushes the span name and returns its depth as the handle;
   [exit] must receive the handle of the innermost open span. A
   mismatch raises under [Obs.debug] and saturates otherwise: exits
   with no matching open span are ignored, exits over still-open
   children close the children first. Totals are never corrupted
   either way. *)

let push s name =
  s.stack <- name :: s.stack;
  s.depth <- s.depth + 1;
  hook_enter name

let pop_record s args =
  match s.stack with
  | [] -> ()
  | name :: rest ->
    s.stack <- rest;
    s.depth <- s.depth - 1;
    record s name End args;
    hook_exit name

let enter ?(args = []) name =
  if not (Atomic.get on) then null_handle
  else begin
    let s = st () in
    record s name Begin args;
    push s name;
    s.depth
  end

let exit ?(args = []) h =
  if Atomic.get on && h > null_handle then begin
    let s = st () in
    if s.depth < h then begin
      if Obs.debug () then
        invalid_arg "Span.exit: span already closed (double exit)"
    end
    else begin
      if s.depth > h && Obs.debug () then
        invalid_arg "Span.exit: unclosed child spans";
      while s.depth > h do
        pop_record s []
      done;
      pop_record s args
    end
  end

let with_ ?args name f =
  if not (Atomic.get on) then f ()
  else begin
    let h = enter ?args name in
    match f () with
    | r ->
      exit h;
      r
    | exception e ->
      exit ~args:[ ("exception", Str (Printexc.to_string e)) ] h;
      raise e
  end

let instant ?(args = []) name =
  if Atomic.get on then record (st ()) name Instant args

let counter name args =
  if Atomic.get on then record (st ()) name Counter args

let reset () =
  let s = st () in
  s.len <- 0;
  s.dropped_events <- 0;
  s.tick <- 0;
  s.last_ts <- 0;
  s.custom_clock <- None;
  s.stack <- [];
  s.depth <- 0

let events () =
  let s = st () in
  Array.to_list (Array.sub s.buf 0 s.len)

let num_events () = (st ()).len

let dropped () = (st ()).dropped_events

let current_depth () = (st ()).depth

(* {1 Shard transfer}

   [drain_events] takes (and clears) the calling domain's buffer;
   [absorb_events] re-records each event on the calling domain with a
   fresh local stamp, preserving order. Worker stamps are meaningless on
   the spawner's timeline (each worker ticks from zero), so re-stamping
   keeps the merged trace monotonic; each worker's events arrive as a
   contiguous, well-nested block. Dropped-event counts travel too. *)

type drained = event list * int

let drain_events () =
  let s = st () in
  let evs = Array.to_list (Array.sub s.buf 0 s.len) in
  let dropped = s.dropped_events in
  s.len <- 0;
  s.dropped_events <- 0;
  s.stack <- [];
  s.depth <- 0;
  (evs, dropped)

let absorb_events (evs, dropped) =
  let s = st () in
  List.iter (fun e -> record s e.name e.phase e.args) evs;
  s.dropped_events <- s.dropped_events + dropped

(* {1 Chrome trace-event serialization}

   The JSON Array Format of the Trace Event spec, wrapped in the object
   form ({"traceEvents": [...]}) that Perfetto and chrome://tracing both
   import. Timestamps are the deterministic integer stamps above,
   declared as microseconds (the unit the format mandates); durations
   therefore read in ticks/cycles, which is exactly what a reproducible
   trace wants. [nue_obs] depends on nothing, so the escaping is local
   rather than borrowed from the pipeline's JSON module. *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let arg_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Buffer.add_string b "null"
    else Buffer.add_string b (Printf.sprintf "%.12g" f)
  | Str s -> Buffer.add_string b (escape s)
  | Bool v -> Buffer.add_string b (if v then "true" else "false")

let add_args b args =
  Buffer.add_string b {|,"args":{|};
  List.iteri
    (fun i (k, v) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b (escape k);
       Buffer.add_char b ':';
       arg_value b v)
    args;
  Buffer.add_char b '}'

let add_event b e =
  let ph =
    match e.phase with
    | Begin -> "B"
    | End -> "E"
    | Instant -> "i"
    | Counter -> "C"
  in
  Buffer.add_string b {|{"name":|};
  Buffer.add_string b (escape e.name);
  Buffer.add_string b (Printf.sprintf {|,"cat":"nue","ph":"%s","ts":%d|} ph e.ts);
  Buffer.add_string b {|,"pid":1,"tid":1|};
  if e.phase = Instant then Buffer.add_string b {|,"s":"t"|};
  (match (e.phase, e.args) with
   | End, [] -> ()
   | _ -> add_args b e.args);
  Buffer.add_char b '}'

let to_chrome_string () =
  let s = st () in
  let b = Buffer.create (256 + (96 * s.len)) in
  Buffer.add_string b {|{"traceEvents":[|};
  for i = 0 to s.len - 1 do
    if i > 0 then Buffer.add_char b ',';
    add_event b s.buf.(i)
  done;
  Buffer.add_string b
    (Printf.sprintf
       {|],"displayTimeUnit":"ms","otherData":{"clock":"deterministic-ticks","dropped_events":%d}}|}
       s.dropped_events);
  Buffer.contents b

(* {1 Flamegraph summary}

   Inclusive tick totals aggregated by span-name stack path, rendered as
   an indented tree sorted by total descending (name as tie-break, so
   the rendering is deterministic). *)

type node = {
  mutable total : int;
  mutable calls : int;
  children : (string, node) Hashtbl.t;
}

let fresh_node () = { total = 0; calls = 0; children = Hashtbl.create 4 }

let child_of n name =
  match Hashtbl.find_opt n.children name with
  | Some c -> c
  | None ->
    let c = fresh_node () in
    Hashtbl.replace n.children name c;
    c

let flamegraph ?(width = 80) () =
  let s = st () in
  let root = fresh_node () in
  (* (node, begin ts) for every open span while walking the buffer. *)
  let walk_stack = ref [ (root, 0) ] in
  for i = 0 to s.len - 1 do
    let e = s.buf.(i) in
    match e.phase with
    | Begin ->
      let parent = fst (List.hd !walk_stack) in
      walk_stack := (child_of parent e.name, e.ts) :: !walk_stack
    | End ->
      (match !walk_stack with
       | (n, t0) :: (_ :: _ as rest) ->
         n.total <- n.total + (e.ts - t0);
         n.calls <- n.calls + 1;
         walk_stack := rest
       | _ -> () (* unbalanced End: ignore *))
    | Instant | Counter -> ()
  done;
  let grand_total =
    Hashtbl.fold (fun _ c acc -> acc + c.total) root.children 0
  in
  let b = Buffer.create 512 in
  let rec render indent n =
    let kids =
      Hashtbl.fold (fun name c acc -> (name, c) :: acc) n.children []
    in
    let kids =
      List.sort
        (fun (na, a) (nb, bb) ->
           match compare bb.total a.total with
           | 0 -> compare na nb
           | c -> c)
        kids
    in
    List.iter
      (fun (name, c) ->
         let label = String.make (2 * indent) ' ' ^ name in
         let label =
           if String.length label > width - 28 then
             String.sub label 0 (width - 28)
           else label
         in
         let pct =
           if grand_total = 0 then 0.0
           else 100.0 *. float_of_int c.total /. float_of_int grand_total
         in
         Buffer.add_string b
           (Printf.sprintf "%-*s %10d ticks %6dx %5.1f%%\n" (width - 28)
              label c.total c.calls pct);
         render (indent + 1) c)
      kids
  in
  if grand_total = 0 && Hashtbl.length root.children = 0 then
    Buffer.add_string b "(no spans recorded)\n"
  else render 0 root;
  Buffer.contents b
