(* Tests for the observability layer (Nue_obs.Obs): registry
   idempotence, disabled-path semantics (no counting, no allocation,
   identical routing results), snapshot/reset round-trips, and the
   stability of the JSON rendering under key ordering. *)

module Obs = Nue_obs.Obs
module Experiment = Nue_pipeline.Experiment
module Json = Nue_pipeline.Json
module Table = Nue_routing.Table
module Nue = Nue_core.Nue

let test_case = Alcotest.test_case

(* Every test leaves the registry disabled and zeroed so instrumented
   production code never bleeds counts between tests. *)
let scrub () =
  Obs.disable ();
  Obs.reset ()

let registration_idempotent () =
  scrub ();
  let a = Obs.counter "test.obs.idem" in
  let b = Obs.counter "test.obs.idem" in
  Obs.enable ();
  Obs.incr a;
  Obs.incr b;
  Obs.add a 3;
  scrub ();
  (* peek reads through the shared cell regardless of the flag... *)
  Alcotest.(check int) "after reset" 0 (Obs.peek a);
  Obs.enable ();
  Obs.incr a;
  Alcotest.(check int) "one cell behind both handles" 1 (Obs.peek b);
  scrub ()

let disabled_counts_nothing () =
  scrub ();
  let c = Obs.counter "test.obs.disabled" in
  Obs.incr c;
  Obs.add c 1000;
  Alcotest.(check int) "no counting while disabled" 0 (Obs.peek c);
  let snap = Obs.snapshot () in
  List.iter
    (fun (name, v) -> Alcotest.(check int) (name ^ " zero") 0 v)
    snap.Obs.counters;
  List.iter
    (fun (name, (t : Obs.timer_total)) ->
       Alcotest.(check int) (name ^ " no activations") 0 t.Obs.activations;
       Alcotest.(check (float 0.0)) (name ^ " no seconds") 0.0 t.Obs.seconds)
    snap.Obs.timers

let disabled_hot_path_does_not_allocate () =
  scrub ();
  let c = Obs.counter "test.obs.alloc" in
  let t = Obs.timer "test.obs.alloc_timer" in
  (* Warm up so the closure and any lazy setup are allocated before
     measuring. *)
  Obs.incr c;
  Obs.add c 2;
  let w0 = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Obs.incr c;
    Obs.add c 2
  done;
  let w1 = Gc.minor_words () in
  (* The two Gc.minor_words calls box a float each; anything beyond a
     small constant means the hot path allocates per call. *)
  Alcotest.(check bool) "incr/add allocation-free" true (w1 -. w0 < 256.0);
  (* Disabled [time] is a plain call: run a pre-allocated closure. *)
  let thunk () = 0 in
  let w2 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Obs.time t thunk)
  done;
  let w3 = Gc.minor_words () in
  Alcotest.(check bool) "disabled time allocation-free" true
    (w3 -. w2 < 256.0);
  Alcotest.(check int) "nothing counted" 0 (Obs.peek c)

let same_results_with_and_without_tracing () =
  (* The instrumentation must be observation-only: routing the same
     spec with tracing on and off yields the identical table. *)
  scrub ();
  let built = Helpers.random_built ~seed:21 () in
  let route () =
    match (Experiment.run ~vcs:4 ~engine:"nue" built).Experiment.table with
    | Ok t -> t
    | Error _ -> Alcotest.fail "nue failed"
  in
  let plain = route () in
  let traced, snap = Experiment.with_trace route in
  Alcotest.(check bool) "tracing captured work" true
    (Obs.find snap "cdg.usable_calls" > 0);
  Alcotest.(check int) "same vls" plain.Table.num_vls traced.Table.num_vls;
  Array.iteri
    (fun i plain_row ->
       Alcotest.(check (array int)) (Printf.sprintf "next_channel row %d" i)
         plain_row traced.Table.next_channel.(i))
    plain.Table.next_channel;
  Alcotest.(check bool) "flag restored" false (Obs.enabled ());
  scrub ()

let snapshot_reset_round_trip () =
  scrub ();
  let c = Obs.counter "test.obs.round" in
  let t = Obs.timer "test.obs.round_timer" in
  Obs.enable ();
  Obs.incr c;
  Obs.add c 41;
  ignore (Obs.time t (fun () -> 7));
  let snap = Obs.snapshot () in
  Alcotest.(check int) "counter snapshotted" 42
    (Obs.find snap "test.obs.round");
  Alcotest.(check int) "timer activations" 1
    (Obs.find_timer snap "test.obs.round_timer").Obs.activations;
  Alcotest.(check int) "absent counter reads 0" 0
    (Obs.find snap "test.obs.never_registered");
  Obs.reset ();
  let snap2 = Obs.snapshot () in
  Alcotest.(check int) "reset zeroes counter" 0
    (Obs.find snap2 "test.obs.round");
  Alcotest.(check int) "reset zeroes timer" 0
    (Obs.find_timer snap2 "test.obs.round_timer").Obs.activations;
  (* Registration survives the reset: the name still appears. *)
  Alcotest.(check bool) "name retained" true
    (List.mem_assoc "test.obs.round" snap2.Obs.counters);
  scrub ()

let timer_records_exceptions () =
  scrub ();
  let t = Obs.timer "test.obs.exn_timer" in
  Obs.enable ();
  (match Obs.time t (fun () -> failwith "boom") with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check int) "activation recorded" 1
    (Obs.find_timer (Obs.snapshot ()) "test.obs.exn_timer").Obs.activations;
  scrub ()

let manual_scope_guards () =
  scrub ();
  let t = Obs.timer "test.obs.scope" in
  Obs.enable ();
  (* Balanced use works and counts one activation. *)
  Obs.start t;
  Alcotest.(check bool) "running" true (Obs.running t);
  Obs.stop t;
  Alcotest.(check bool) "stopped" false (Obs.running t);
  Alcotest.(check int) "one activation" 1
    (Obs.find_timer (Obs.snapshot ()) "test.obs.scope").Obs.activations;
  (* Release mode saturates: double starts/stops are dropped. *)
  Obs.set_debug false;
  Obs.stop t;
  Obs.start t;
  Obs.start t;
  Obs.stop t;
  Obs.stop t;
  Alcotest.(check int) "saturated to two activations" 2
    (Obs.find_timer (Obs.snapshot ()) "test.obs.scope").Obs.activations;
  (* Debug mode raises on the same misuse. *)
  Obs.set_debug true;
  Alcotest.(check bool) "debug double stop raises" true
    (match Obs.stop t with
     | exception Invalid_argument _ -> true
     | () -> false);
  Obs.start t;
  Alcotest.(check bool) "debug double start raises" true
    (match Obs.start t with
     | exception Invalid_argument _ -> true
     | () -> false);
  Obs.stop t;
  Obs.set_debug false;
  (* Disabled: start/stop are flag tests, nothing runs or counts. *)
  Obs.disable ();
  Obs.start t;
  Alcotest.(check bool) "disabled start inert" false (Obs.running t);
  Obs.stop t;
  scrub ()

let reset_clears_open_scope () =
  scrub ();
  let t = Obs.timer "test.obs.open_scope" in
  Obs.enable ();
  Obs.start t;
  Obs.reset ();
  Alcotest.(check bool) "reset closes the scope" false (Obs.running t);
  (* A stop after reset is unbalanced, and saturates in release mode. *)
  Obs.stop t;
  Alcotest.(check int) "no activation leaked" 0
    (Obs.find_timer (Obs.snapshot ()) "test.obs.open_scope").Obs.activations;
  scrub ()

let snapshot_sorted_by_name () =
  scrub ();
  (* Register in anti-alphabetical order and mutate in a third order:
     the snapshot must come out sorted by name regardless. *)
  let z = Obs.counter "test.obs.zz" in
  let a = Obs.counter "test.obs.aa" in
  let m = Obs.counter "test.obs.mm" in
  Obs.enable ();
  Obs.incr m;
  Obs.incr z;
  Obs.incr a;
  let snap = Obs.snapshot () in
  let names = List.map fst snap.Obs.counters in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names;
  scrub ()

let json_stable_under_key_ordering () =
  (* trace_to_json must not depend on the order of the snapshot's assoc
     lists: shuffled input renders to the identical string. *)
  let counters =
    [ ("cdg.usable_calls", 10); ("cdg.memo.hit_used", 4);
      ("cdg.memo.hit_blocked", 1); ("heap.inserts", 7); ("pk.add_calls", 3) ]
  in
  let timers =
    [ ("engine.nue", { Obs.seconds = 0.25; activations = 2 });
      ("engine.minhop", { Obs.seconds = 0.5; activations = 1 }) ]
  in
  let sort l = List.sort (fun (x, _) (y, _) -> compare x y) l in
  let snap_sorted = { Obs.counters = sort counters; timers = sort timers } in
  let snap_shuffled =
    { Obs.counters = List.rev counters; timers = List.rev timers }
  in
  Alcotest.(check string) "identical rendering"
    (Json.to_string (Experiment.trace_to_json snap_sorted))
    (Json.to_string (Experiment.trace_to_json snap_shuffled))

let trace_json_shape () =
  scrub ();
  let built = Helpers.random_built ~seed:5 () in
  let _, snap =
    Experiment.with_trace (fun () ->
        ignore (Experiment.run ~vcs:4 ~engine:"nue" built))
  in
  let s = Json.to_string (Experiment.trace_to_json snap) in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i =
      i + nl <= hl && (String.sub s i nl = needle || go (i + 1))
    in
    nl = 0 || go 0
  in
  List.iter
    (fun needle ->
       Alcotest.(check bool) (needle ^ " present") true (contains needle))
    [ {|"counters"|}; {|"timers"|}; {|"derived"|}; {|"omega_memo_hit_rate"|};
      {|"heap_ops"|}; {|"cdg.usable_calls"|}; {|"engine.nue"|} ];
  scrub ()

let derived_rates_are_ratios () =
  scrub ();
  let built = Helpers.random_built ~seed:9 () in
  let _, snap =
    Experiment.with_trace (fun () ->
        ignore (Experiment.run ~vcs:2 ~engine:"nue" built))
  in
  let hits =
    Obs.find snap "cdg.memo.hit_blocked" + Obs.find snap "cdg.memo.hit_used"
  in
  let calls = Obs.find snap "cdg.usable_calls" in
  Alcotest.(check bool) "calls observed" true (calls > 0);
  (match Experiment.trace_to_json snap with
   | Json.Obj fields ->
     (match List.assoc "derived" fields with
      | Json.Obj derived ->
        (match List.assoc "omega_memo_hit_rate" derived with
         | Json.Float r ->
           Alcotest.(check (float 1e-9)) "hit rate"
             (float_of_int hits /. float_of_int calls) r
         | _ -> Alcotest.fail "hit rate not a float")
      | _ -> Alcotest.fail "no derived object")
   | _ -> Alcotest.fail "trace not an object");
  scrub ()

let suite =
  [ ("obs:registry",
     [ test_case "registration idempotent" `Quick registration_idempotent;
       test_case "disabled counts nothing" `Quick disabled_counts_nothing;
       test_case "disabled hot path allocation-free" `Quick
         disabled_hot_path_does_not_allocate;
       test_case "tracing is observation-only" `Quick
         same_results_with_and_without_tracing ]);
    ("obs:snapshot",
     [ test_case "snapshot/reset round-trip" `Quick snapshot_reset_round_trip;
       test_case "timer survives exceptions" `Quick timer_records_exceptions;
       test_case "manual scope guards" `Quick manual_scope_guards;
       test_case "reset clears open scope" `Quick reset_clears_open_scope;
       test_case "sorted by name" `Quick snapshot_sorted_by_name ]);
    ("obs:json",
     [ test_case "stable under key ordering" `Quick
         json_stable_under_key_ordering;
       test_case "trace shape" `Quick trace_json_shape;
       test_case "derived rates" `Quick derived_rates_are_ratios ]) ]
