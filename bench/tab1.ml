(* TAB1: regenerate Table 1 — topology configurations used for the
   throughput simulations of Fig. 10 — from the generators, confirming
   switch/terminal/channel counts and link redundancy. *)

module Network = Nue_netgraph.Network
module Topology = Nue_netgraph.Topology
module Prng = Nue_structures.Prng
module Json = Nue_pipeline.Json

let configs () =
  [ ("Random", (Topology.random (Prng.create 42) ~switches:125 ~inter_switch_links:1000 ~terminals_per_switch:8 ()), 1);
    ("6x5x5 3D-Torus",
     (Topology.torus3d ~dims:(6, 5, 5) ~terminals_per_switch:7 ~redundancy:4 ()).Topology.net, 4);
    ("10-ary 3-tree", Topology.kary_ntree ~k:10 ~n:3 ~terminals_per_leaf:11 (), 1);
    ("Kautz (d=5,k=3)",
     Topology.kautz ~degree:5 ~diameter:3 ~terminals_per_switch:7 ~redundancy:2 (), 2);
    ("Dragonfly (12,6,6,15)", Topology.dragonfly ~a:12 ~p:6 ~h:6 ~g:15 (), 1);
    ("Cascade (2 groups)", Topology.cascade (), 1);
    ("Tsubame2.5", Topology.tsubame25 (), 1) ]

let run () =
  Common.section "TAB1: topology configurations (Table 1)";
  Common.print_header
    [ (24, "Topology"); (10, "Switches"); (11, "Terminals"); (10, "Channels");
      (3, "r") ];
  let rows =
    List.map
      (fun (name, net, r) ->
         let isl = (Network.num_channels net / 2) - Network.num_terminals net in
         Printf.printf "%s%s%s%s%s\n"
           (Common.cell 24 name)
           (Common.cell 10 (string_of_int (Network.num_switches net)))
           (Common.cell 11 (string_of_int (Network.num_terminals net)))
           (Common.cell 10 (string_of_int isl))
           (Common.cell 3 (string_of_int r));
         Json.Obj
           [ ("topology", Json.Str name);
             ("switches", Json.Int (Network.num_switches net));
             ("terminals", Json.Int (Network.num_terminals net));
             ("inter_switch_channels", Json.Int isl);
             ("redundancy", Json.Int r) ])
      (configs ())
  in
  Report.add "tab1" (Json.List rows);
  print_newline ();
  print_endline
    "Paper values: 125/1000/1000/1, 150/1050/1800/4, 300/1100/2000/1,\n\
     150/1050/1500/2, 180/1080/1515/1, 192/1536/3072/1, 243/1407/3384/1.\n\
     (The paper's Kautz caption says d=7; K(5,3) is the parameterization\n\
     that reproduces the printed counts — see DESIGN.md.)"
