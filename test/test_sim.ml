(* Tests for the flit-level simulator: delivery, conservation, credit
   discipline, deadlock detection and throughput sanity. *)

module Network = Nue_netgraph.Network
module Table = Nue_routing.Table
module Minhop = Nue_routing.Minhop
module Sim = Nue_sim.Sim
module Traffic = Nue_sim.Traffic
module Nue = Nue_core.Nue
module Prng = Nue_structures.Prng

let test_case = Alcotest.test_case

let two_terminals () =
  (* Two terminals on one switch: a single message crosses two links. *)
  Helpers.single_switch_pair ()

let single_message_delivery () =
  let net = two_terminals () in
  let table = Minhop.route net in
  let terms = Network.terminals net in
  let out =
    Sim.run table ~traffic:[ { Traffic.src = terms.(0); dst = terms.(1); bytes = 512 } ]
  in
  Alcotest.(check int) "one packet" 1 out.Sim.total_packets;
  Alcotest.(check int) "delivered" 1 out.Sim.delivered_packets;
  Alcotest.(check int) "bytes" 512 out.Sim.delivered_bytes;
  Alcotest.(check bool) "no deadlock" false out.Sim.deadlock;
  (* 8 flits over 2 hops with latency 1: the tail lands well under 30
     cycles. *)
  Alcotest.(check bool) "fast" true (out.Sim.cycles < 30)

let message_split_into_mtu_packets () =
  let net = two_terminals () in
  let table = Minhop.route net in
  let terms = Network.terminals net in
  let out =
    Sim.run table
      ~traffic:[ { Traffic.src = terms.(0); dst = terms.(1); bytes = 5000 } ]
  in
  (* 5000 B over a 2048 B MTU = 3 packets. *)
  Alcotest.(check int) "3 packets" 3 out.Sim.total_packets;
  Alcotest.(check int) "all delivered" 3 out.Sim.delivered_packets;
  Alcotest.(check int) "bytes conserved" 5000 out.Sim.delivered_bytes

let all_to_all_completes () =
  let t = Helpers.small_torus () in
  let net = t.Nue_netgraph.Topology.net in
  let table = Nue.route ~vcs:2 net in
  let traffic = Traffic.all_to_all_shift net ~message_bytes:256 in
  let out = Sim.run table ~traffic in
  Alcotest.(check int) "all delivered" out.Sim.total_packets
    out.Sim.delivered_packets;
  Alcotest.(check bool) "no deadlock" false out.Sim.deadlock;
  Alcotest.(check bool) "positive throughput" true (out.Sim.aggregate_gbs > 0.0)

let link_rate_bound () =
  (* A single sender cannot exceed one flit per cycle: aggregate <= one
     link's rate. *)
  let net = two_terminals () in
  let table = Minhop.route net in
  let terms = Network.terminals net in
  let out =
    Sim.run table
      ~traffic:[ { Traffic.src = terms.(0); dst = terms.(1); bytes = 64 * 1024 } ]
  in
  Alcotest.(check bool) "bounded by link rate" true
    (out.Sim.aggregate_gbs <= 4.0 +. 1e-6)

let deadlock_detected_on_cyclic_routing () =
  (* Clockwise ring routing with heavy traffic and tiny buffers: the
     classic ring deadlock. The watchdog must fire. *)
  let net = Helpers.ring ~terminals:1 4 in
  let terms = Network.terminals net in
  let nn = Network.num_nodes net in
  let next_channel =
    Array.map
      (fun dest ->
         let dw = Network.terminal_attachment net dest in
         let nexts = Array.make nn (-1) in
         for i = 0 to 3 do
           if i = dw then
             nexts.(i) <- Option.get (Network.find_channel net i dest)
           else
             nexts.(i) <-
               Option.get (Network.find_channel net i ((i + 1) mod 4))
         done;
         Array.iter
           (fun t ->
              if t <> dest then nexts.(t) <- (Network.out_channels net t).(0))
           terms;
         nexts)
      terms
  in
  let table =
    Table.make ~net ~algorithm:"clockwise" ~dests:terms ~next_channel
      ~vl:Table.All_zero ~num_vls:1 ()
  in
  Alcotest.(check bool) "routing is deadlock-prone" false
    (Nue_routing.Verify.deadlock_free table);
  let traffic = Traffic.all_to_all_shift net ~message_bytes:8192 in
  let config =
    { Sim.default_config with buffer_flits = 2; watchdog = 5_000 }
  in
  let out = Sim.run ~config table ~traffic in
  Alcotest.(check bool) "deadlock detected" true out.Sim.deadlock;
  Alcotest.(check bool) "not everything delivered" true
    (out.Sim.delivered_packets < out.Sim.total_packets)

let nue_survives_where_cyclic_deadlocks () =
  (* Same network, same load, same buffers — Nue's tables drain. *)
  let net = Helpers.ring ~terminals:1 4 in
  let table = Nue.route ~vcs:1 net in
  let traffic = Traffic.all_to_all_shift net ~message_bytes:8192 in
  let config =
    { Sim.default_config with buffer_flits = 2; watchdog = 5_000 }
  in
  let out = Sim.run ~config table ~traffic in
  Alcotest.(check bool) "no deadlock" false out.Sim.deadlock;
  Alcotest.(check int) "all delivered" out.Sim.total_packets
    out.Sim.delivered_packets

let traffic_all_to_all_counts () =
  let net = (Helpers.small_torus ()).Nue_netgraph.Topology.net in
  let t = Network.num_terminals net in
  let traffic = Traffic.all_to_all_shift net ~message_bytes:128 in
  Alcotest.(check int) "T(T-1) messages" (t * (t - 1)) (List.length traffic);
  List.iter
    (fun { Traffic.src; dst; _ } ->
       if src = dst then Alcotest.fail "self message")
    traffic

let traffic_uniform_random_counts () =
  let net = (Helpers.small_torus ()).Nue_netgraph.Topology.net in
  let prng = Prng.create 4 in
  let traffic =
    Traffic.uniform_random prng net ~messages_per_terminal:5 ~message_bytes:64
  in
  Alcotest.(check int) "count" (5 * Network.num_terminals net)
    (List.length traffic)

let traffic_permutation_bijective () =
  let net = (Helpers.small_torus ()).Nue_netgraph.Topology.net in
  let prng = Prng.create 4 in
  let traffic = Traffic.permutation prng net ~message_bytes:64 in
  let seen_src = Hashtbl.create 64 in
  List.iter
    (fun { Traffic.src; dst; _ } ->
       if src = dst then Alcotest.fail "fixed point";
       if Hashtbl.mem seen_src src then Alcotest.fail "duplicate source";
       Hashtbl.add seen_src src ())
    traffic

let rejects_non_terminal_endpoints () =
  let net = Helpers.ring5 () in
  let table = Minhop.route net in
  Alcotest.(check bool) "switch endpoint rejected" true
    (match
       Sim.run table ~traffic:[ { Traffic.src = 0; dst = 1; bytes = 64 } ]
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

let more_vcs_do_not_hurt_much () =
  (* Sanity on the Fig. 1/10 trend at miniature scale: Nue's simulated
     all-to-all throughput at k=4 is at least ~60% of its k=1 value
     (usually it is better; small instances are noisy). *)
  let t = Helpers.small_torus () in
  let net = t.Nue_netgraph.Topology.net in
  let traffic = Traffic.all_to_all_shift net ~message_bytes:512 in
  let run vcs =
    let table = Nue.route ~vcs net in
    (Sim.run table ~traffic).Sim.aggregate_gbs
  in
  let t1 = run 1 and t4 = run 4 in
  Alcotest.(check bool) "k=4 not catastrophically worse" true
    (t4 >= 0.6 *. t1);
  Alcotest.(check bool) "both positive" true (t1 > 0.0 && t4 > 0.0)

(* {1 Telemetry} *)

let telemetry_matches_plain_run () =
  (* The sink is observation-only: the outcome with telemetry attached
     is identical to the plain run's. *)
  let t = Helpers.small_torus () in
  let net = t.Nue_netgraph.Topology.net in
  let table = Nue.route ~vcs:2 net in
  let traffic = Traffic.all_to_all_shift net ~message_bytes:256 in
  let plain = Sim.run table ~traffic in
  let out, _ = Sim.run_with_telemetry table ~traffic in
  Alcotest.(check int) "cycles" plain.Sim.cycles out.Sim.cycles;
  Alcotest.(check int) "delivered" plain.Sim.delivered_packets
    out.Sim.delivered_packets;
  Alcotest.(check (float 1e-9)) "p50" plain.Sim.latency_p50 out.Sim.latency_p50;
  Alcotest.(check (float 1e-9)) "p95" plain.Sim.latency_p95 out.Sim.latency_p95;
  Alcotest.(check (float 1e-9)) "p99" plain.Sim.latency_p99 out.Sim.latency_p99;
  Alcotest.(check (float 1e-9)) "max" plain.Sim.latency_max out.Sim.latency_max

let telemetry_sampling_and_utilization () =
  let t = Helpers.small_torus () in
  let net = t.Nue_netgraph.Topology.net in
  let table = Nue.route ~vcs:2 net in
  let traffic = Traffic.all_to_all_shift net ~message_bytes:256 in
  let telemetry = { Sim.sample_every = 4; max_samples = 8; latency_bins = 16 } in
  let out, tm = Sim.run_with_telemetry ~telemetry table ~traffic in
  Alcotest.(check int) "cadence recorded" 4 tm.Sim.sample_every;
  Alcotest.(check bool) "ring filled" true (Array.length tm.Sim.samples <= 8);
  (* The run is much longer than 8 * 4 cycles, so the ring overflowed
     and only the most recent samples survive, in order. *)
  Alcotest.(check bool) "drops counted" true (tm.Sim.dropped_samples > 0);
  let rec chronological last = function
    | [] -> ()
    | (s : Sim.sample) :: rest ->
      Alcotest.(check bool) "samples in cycle order" true (s.Sim.at_cycle > last);
      chronological s.Sim.at_cycle rest
  in
  chronological (-1) (Array.to_list tm.Sim.samples);
  Array.iter
    (fun (s : Sim.sample) ->
       Alcotest.(check int) "per-channel occupancy vector"
         (Network.num_channels net)
         (Array.length s.Sim.link_occupancy);
       Array.iter
         (fun o -> Alcotest.(check bool) "occupancy >= 0" true (o >= 0))
         s.Sim.link_occupancy)
    tm.Sim.samples;
  (* Utilization: transmits / cycles, bounded by the link rate. *)
  Alcotest.(check int) "per-channel utilization vector"
    (Network.num_channels net)
    (Array.length tm.Sim.link_utilization);
  Array.iteri
    (fun c u ->
       Alcotest.(check bool) "utilization in [0,1]" true (u >= 0.0 && u <= 1.0);
       Alcotest.(check (float 1e-9)) "utilization = transmits/cycles"
         (float_of_int tm.Sim.link_transmits.(c)
          /. float_of_int out.Sim.cycles)
         u)
    tm.Sim.link_utilization;
  let peak = Array.fold_left max 0.0 tm.Sim.link_utilization in
  Alcotest.(check (float 1e-9)) "peak is the max" peak
    tm.Sim.peak_link_utilization;
  Alcotest.(check (float 1e-9)) "peak_link achieves it"
    tm.Sim.link_utilization.(tm.Sim.peak_link)
    tm.Sim.peak_link_utilization;
  (* Latency histogram covers every delivered packet, and the
     percentile chain is ordered. *)
  let module H = Nue_metrics.Histogram in
  Alcotest.(check int) "histogram counts deliveries"
    out.Sim.delivered_packets (H.count tm.Sim.latency);
  let p50 = H.percentile tm.Sim.latency 0.50 in
  let p95 = H.percentile tm.Sim.latency 0.95 in
  let p99 = H.percentile tm.Sim.latency 0.99 in
  Alcotest.(check bool) "p50 <= p95 <= p99" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check (list (pair int int))) "no deadlock, no wait cycle" []
    tm.Sim.deadlock_wait_cycle;
  Alcotest.(check bool) "rejects sample_every < 1" true
    (match
       Sim.run_with_telemetry
         ~telemetry:{ telemetry with Sim.sample_every = 0 }
         table ~traffic
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

let deadlock_attributed_to_wait_cycle () =
  (* The clockwise-ring deadlock again, now asking the sink to name the
     circular wait: the blocked units must form a nonempty cycle of
     distinct (channel, VL) pairs over real channels. *)
  let net = Helpers.ring ~terminals:1 4 in
  let terms = Network.terminals net in
  let nn = Network.num_nodes net in
  let next_channel =
    Array.map
      (fun dest ->
         let dw = Network.terminal_attachment net dest in
         let nexts = Array.make nn (-1) in
         for i = 0 to 3 do
           if i = dw then
             nexts.(i) <- Option.get (Network.find_channel net i dest)
           else
             nexts.(i) <-
               Option.get (Network.find_channel net i ((i + 1) mod 4))
         done;
         Array.iter
           (fun t ->
              if t <> dest then nexts.(t) <- (Network.out_channels net t).(0))
           terms;
         nexts)
      terms
  in
  let table =
    Table.make ~net ~algorithm:"clockwise" ~dests:terms ~next_channel
      ~vl:Table.All_zero ~num_vls:1 ()
  in
  let traffic = Traffic.all_to_all_shift net ~message_bytes:8192 in
  let config =
    { Sim.default_config with buffer_flits = 2; watchdog = 5_000 }
  in
  let out, tm = Sim.run_with_telemetry ~config table ~traffic in
  Alcotest.(check bool) "deadlock detected" true out.Sim.deadlock;
  let cycle = tm.Sim.deadlock_wait_cycle in
  Alcotest.(check bool) "wait cycle found" true (List.length cycle >= 2);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (c, vl) ->
       Alcotest.(check bool) "real channel" true
         (c >= 0 && c < Network.num_channels net);
       Alcotest.(check int) "single-VL table blocks on VL 0" 0 vl;
       if Hashtbl.mem seen (c, vl) then Alcotest.fail "unit repeated";
       Hashtbl.add seen (c, vl) ())
    cycle;
  (* All four ring links participate in the classic ring deadlock. *)
  Alcotest.(check int) "all ring units blocked" 4 (List.length cycle)

let suite =
  [ ("traffic",
     [ test_case "all-to-all counts" `Quick traffic_all_to_all_counts;
       test_case "uniform random counts" `Quick traffic_uniform_random_counts;
       test_case "permutation bijective" `Quick traffic_permutation_bijective ]);
    ("sim",
     [ test_case "single message" `Quick single_message_delivery;
       test_case "MTU split" `Quick message_split_into_mtu_packets;
       test_case "all-to-all completes" `Slow all_to_all_completes;
       test_case "link rate bound" `Quick link_rate_bound;
       test_case "deadlock detected" `Quick deadlock_detected_on_cyclic_routing;
       test_case "nue survives same load" `Quick nue_survives_where_cyclic_deadlocks;
       test_case "rejects non-terminal endpoints" `Quick
         rejects_non_terminal_endpoints;
       test_case "VC trend sanity" `Slow more_vcs_do_not_hurt_much ]);
    ("sim:telemetry",
     [ test_case "observation-only" `Slow telemetry_matches_plain_run;
       test_case "sampling and utilization" `Slow
         telemetry_sampling_and_utilization;
       test_case "deadlock attribution" `Quick
         deadlock_attributed_to_wait_cycle ]) ]
